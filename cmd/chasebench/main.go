// Command chasebench runs the reproduction experiments (E1–E21 of
// EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	chasebench                      # run everything
//	chasebench -exp E1              # run one experiment
//	chasebench -list                # list experiments
//	chasebench -json                # also write BENCH_PR3.json (perf trajectory)
//	chasebench -exp E18 -exec-rows 1000000   # E18 at a nightly data tier
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cnb/internal/bench"
)

// defaultJSONPath is where -json writes the machine-readable results;
// CI archives this file as the perf trajectory artifact.
const defaultJSONPath = "BENCH_PR3.json"

// record is the machine-readable result of one experiment.
type record struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	WallMS float64            `json:"wall_ms"`
	Rows   int                `json:"rows"`
	Metric map[string]float64 `json:"metrics,omitempty"`
}

// report is the top-level JSON document.
type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Parallelism int      `json:"parallelism"`
	Experiments []record `json:"experiments"`
}

func main() {
	var (
		exp         = flag.String("exp", "", "run a single experiment (e.g. E1)")
		list        = flag.Bool("list", false, "list experiments and exit")
		parallelism = flag.Int("parallelism", 0, "backchase worker count (0 = all cores, 1 = serial)")
		jsonFlag    = flag.Bool("json", false, "write machine-readable results to "+defaultJSONPath)
		jsonOut     = flag.String("json-out", "", "write machine-readable results to this path (implies -json)")
		execRows    = flag.Int("exec-rows", 0, "fact rows for the E18 execution experiment (0 = package default, the CI tier)")
	)
	flag.Parse()
	bench.Parallelism = *parallelism
	if *execRows > 0 {
		bench.ExecRows = *execRows
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Parallelism: *parallelism,
	}
	for _, e := range bench.All() {
		if *exp != "" && !strings.EqualFold(*exp, e.ID) {
			continue
		}
		start := time.Now()
		tb, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Println(tb)
		rep.Experiments = append(rep.Experiments, record{
			ID:     tb.ID,
			Title:  tb.Title,
			WallMS: float64(wall.Microseconds()) / 1000,
			Rows:   len(tb.Rows),
			Metric: tb.Metrics,
		})
	}

	if len(rep.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q (use -list)\n", *exp)
		os.Exit(1)
	}

	if *jsonFlag || *jsonOut != "" {
		path := *jsonOut
		if path == "" {
			path = defaultJSONPath
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", path, len(rep.Experiments))
	}
}
