package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnb/internal/service"
)

// testServer spins the production mux behind httptest.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, mux := newServer(service.Options{Parallelism: 1}, 30*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// projDeptDoc is the paper's running example, same as examples/cnbdclient.
const projDeptDoc = `
schema Logical {
  Proj  : set<{PName: string, CustName: string, PDept: string, Budg: int}>;
  depts : set<{DName: string, DProjs: set<string>, MgrName: string}>;

  constraint RIC1:
    forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName;
  constraint RIC2:
    forall (p in Proj) exists (d in depts) p.PDept = d.DName;
  constraint INV1:
    forall (d in depts, s in d.DProjs, p in Proj) s = p.PName -> p.PDept = d.DName;
  constraint INV2:
    forall (p in Proj, d in depts) p.PDept = d.DName -> exists (s in d.DProjs) p.PName = s;
  constraint KEY1:
    forall (a in depts, b in depts) a.DName = b.DName -> a = b;
  constraint KEY2:
    forall (a in Proj, b in Proj) a.PName = b.PName -> a = b;
}

design Phys over Logical {
  store Proj;
  classdict Dept for depts oid Doid;
  primary index I on Proj(PName);
  secondary index SI on Proj(CustName);
  view JI: select struct(DOID: dd, PN: p.PName)
           from dom(Dept) dd, Dept[dd].DProjs s, Proj p
           where s = p.PName;
}

query Q:
  select struct(PN: s, PB: p.Budg, DN: d.DName)
  from depts d, d.DProjs s, Proj p
  where s = p.PName and p.CustName = "CitiBank";
`

// TestQueryEndToEnd: install a generated ProjDept instance over HTTP,
// then run the running-example query against it — rows come back, the
// timing split and Measure counters are populated, and the second round
// is a warm plan-cache hit. Finishes with /metrics carrying the
// per-instance executed-query counters.
func TestQueryEndToEnd(t *testing.T) {
	ts := testServer(t)

	status, inst := postJSON(t, ts.URL+"/instance?name=pd",
		`{"workload": "projdept", "gen": {"NumDepts": 20, "ProjsPerDept": 5, "CitiBankShare": 0.3, "Seed": 5}}`)
	if status != http.StatusOK || inst["installed"] != true {
		t.Fatalf("install: HTTP %d %v", status, inst)
	}
	if inst["rows"].(float64) <= 0 || inst["collections"].(float64) < 6 {
		t.Fatalf("install summary: %v", inst)
	}

	var firstRows float64
	for round := 1; round <= 2; round++ {
		status, out := postJSON(t, ts.URL+"/query?instance=pd", projDeptDoc)
		if status != http.StatusOK {
			t.Fatalf("round %d: HTTP %d %v", round, status, out)
		}
		queries := out["queries"].([]any)
		if len(queries) != 1 {
			t.Fatalf("round %d: %d query results", round, len(queries))
		}
		q := queries[0].(map[string]any)
		rows := q["rows"].([]any)
		if len(rows) == 0 || q["result_rows"].(float64) != float64(len(rows)) {
			t.Fatalf("round %d: rows %d, result_rows %v", round, len(rows), q["result_rows"])
		}
		if round == 1 {
			firstRows = q["result_rows"].(float64)
		} else {
			if q["cache_hit"] != true {
				t.Fatalf("round 2 not a cache hit: %v", q)
			}
			if q["result_rows"].(float64) != firstRows {
				t.Fatalf("round 2 rows %v != round 1 rows %v", q["result_rows"], firstRows)
			}
		}
		measure := q["measure"].(map[string]any)
		if measure["evals"].(float64) <= 0 || measure["out_rows"].(float64) <= 0 {
			t.Fatalf("round %d: empty measure %v", round, measure)
		}
		if q["plan_ms"].(float64) < 0 || q["exec_ms"].(float64) < 0 || q["plan"] == "" {
			t.Fatalf("round %d: timing/plan missing: %v", round, q)
		}
	}

	status, metrics := getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", status)
	}
	pd := metrics["instances"].(map[string]any)["pd"].(map[string]any)
	if pd["queries"].(float64) != 2 || pd["exec_errors"].(float64) != 0 {
		t.Fatalf("per-instance metrics: %v", pd)
	}
	if pd["evals"].(float64) <= 0 || pd["rows_emitted"].(float64) < 0 {
		t.Fatalf("per-instance work counters: %v", pd)
	}
}

// TestQueryExplainAndTruncation: ?explain=1 returns the operator tree
// without rows; ?max_rows caps the encoding and sets the flag.
func TestQueryExplainAndTruncation(t *testing.T) {
	ts := testServer(t)
	if status, out := postJSON(t, ts.URL+"/instance?name=pd",
		`{"workload": "projdept", "gen": {"NumDepts": 20, "ProjsPerDept": 5, "CitiBankShare": 0.5, "Seed": 6}}`); status != http.StatusOK {
		t.Fatalf("install: HTTP %d %v", status, out)
	}

	status, out := postJSON(t, ts.URL+"/query?instance=pd&explain=1", projDeptDoc)
	if status != http.StatusOK {
		t.Fatalf("explain: HTTP %d %v", status, out)
	}
	q := out["queries"].([]any)[0].(map[string]any)
	if q["explain"] == nil || q["explain"] == "" || q["rows"] != nil {
		t.Fatalf("explain result: %v", q)
	}
	if q["est_cost"].(float64) <= 0 {
		t.Fatalf("explain est_cost: %v", q["est_cost"])
	}

	status, out = postJSON(t, ts.URL+"/query?instance=pd&max_rows=2", projDeptDoc)
	if status != http.StatusOK {
		t.Fatalf("max_rows: HTTP %d %v", status, out)
	}
	q = out["queries"].([]any)[0].(map[string]any)
	if rows := q["rows"].([]any); len(rows) != 2 || q["truncated"] != true {
		t.Fatalf("max_rows=2: rows=%d truncated=%v", len(rows), q["truncated"])
	}
	if q["result_rows"].(float64) <= 2 {
		t.Fatalf("result_rows %v should exceed the cap", q["result_rows"])
	}
}

// TestQueryErrorStatuses: unknown instance → 404, a plan whose only
// candidate hits a failing lookup → 422 with the counters still
// consistent, bad parameters → 400.
func TestQueryErrorStatuses(t *testing.T) {
	ts := testServer(t)

	if status, _ := postJSON(t, ts.URL+"/query?instance=nope", projDeptDoc); status != http.StatusNotFound {
		t.Fatalf("unknown instance: HTTP %d, want 404", status)
	}

	// An instance whose dictionary is missing the key the only plan
	// dereferences: the delivery walk exhausts the pool and reports 422.
	lookupDoc := `
schema S {
  R : set<{A: int}>;
  M : dict<int, int>;
}
query Q:
  select M[x.A] from R x;
`
	status, out := postJSON(t, ts.URL+"/instance?name=hole",
		`{"data": {"R": [{"A": 1}], "M": {"$dict": [{"key": 2, "value": 20}]}}}`)
	if status != http.StatusOK {
		t.Fatalf("install: HTTP %d %v", status, out)
	}
	status, out = postJSON(t, ts.URL+"/query?instance=hole", lookupDoc)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("failing lookup: HTTP %d %v, want 422", status, out)
	}
	if !strings.Contains(out["error"].(string), "no executable plan") {
		t.Fatalf("failing lookup error: %v", out["error"])
	}
	_, metrics := getJSON(t, ts.URL+"/metrics")
	hole := metrics["instances"].(map[string]any)["hole"].(map[string]any)
	if hole["exec_errors"].(float64) != 1 || hole["queries"].(float64) != 0 {
		t.Fatalf("counters after exec error: %v", hole)
	}

	if status, _ := postJSON(t, ts.URL+"/query", projDeptDoc); status != http.StatusBadRequest {
		t.Fatalf("missing instance param: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query?instance=hole&max_rows=abc", projDeptDoc); status != http.StatusBadRequest {
		t.Fatalf("bad max_rows: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/query?instance=hole&timeout_ms=-1", projDeptDoc); status != http.StatusBadRequest {
		t.Fatalf("bad timeout_ms: HTTP %d, want 400", status)
	}
}

// TestInstanceSpecValidation: the /instance spec surface — generator
// specs, inline data with the tagged dict/oid forms, and its rejects.
func TestInstanceSpecValidation(t *testing.T) {
	ts := testServer(t)

	if status, _ := postJSON(t, ts.URL+"/instance", `{"workload": "projdept"}`); status != http.StatusBadRequest {
		t.Fatalf("missing name: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/instance?name=x", `{"workload": "unknown"}`); status != http.StatusBadRequest {
		t.Fatalf("unknown workload: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/instance?name=x", `{}`); status != http.StatusBadRequest {
		t.Fatalf("empty spec: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/instance?name=x",
		`{"workload": "projdept", "data": {"R": []}}`); status != http.StatusBadRequest {
		t.Fatalf("workload+data: HTTP %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/instance?name=x", `{"data": {"R": null}}`); status != http.StatusBadRequest {
		t.Fatalf("null value: HTTP %d, want 400", status)
	}

	status, out := postJSON(t, ts.URL+"/instance?name=star",
		`{"workload": "star",
		  "config": {"Dims": 1, "FactIndexes": 1, "DimIndex": true, "Select": true, "SelectA": 2, "FKConstraints": true},
		  "gen": {"NumFact": 500, "NumDim": 20, "DomA": 5, "Seed": 3}}`)
	if status != http.StatusOK || out["rows"].(float64) < 500 {
		t.Fatalf("star install: HTTP %d %v", status, out)
	}
	cards := out["cards"].(map[string]any)
	if cards["Fact"].(float64) != 500 {
		t.Fatalf("star cards: %v", cards)
	}

	status, out = getJSON(t, ts.URL+"/instance")
	if status != http.StatusOK {
		t.Fatalf("list: HTTP %d", status)
	}
	if insts := out["instances"].([]any); len(insts) != 1 {
		t.Fatalf("list: %v", out)
	}
}

// TestTieredOptimizeEndToEnd: with -max-plan-latency below the cold
// planning time a cold /optimize is served by the greedy tier; the
// detached flight upgrades the cache, /metrics counts both sides, and a
// later request serves the backchase plan marked upgraded. The budget is
// set adaptively from a measured synchronous cold run so the test holds
// on any machine speed and under the race detector.
func TestTieredOptimizeEndToEnd(t *testing.T) {
	// Synchronous reference: cold planning wall clock and tier tag.
	_, syncMux := newServer(service.Options{Parallelism: 1}, 30*time.Second)
	syncTS := httptest.NewServer(syncMux)
	t.Cleanup(syncTS.Close)
	status, out := postJSON(t, syncTS.URL+"/optimize", projDeptDoc)
	if status != http.StatusOK {
		t.Fatalf("sync optimize: HTTP %d: %v", status, out)
	}
	q := out["queries"].([]any)[0].(map[string]any)
	if q["tier"] != "backchase" {
		t.Fatalf("synchronous tier = %v, want backchase", q["tier"])
	}
	coldMS := q["wall_ms"].(float64)

	// A quarter of the cold time: far below cold (greedy tier on cold
	// requests), comfortably above the warm path (~cold/10).
	budget := time.Duration(coldMS/4*1000) * time.Microsecond
	_, mux := newServer(service.Options{Parallelism: 1, MaxPlanLatency: budget}, 30*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	status, out = postJSON(t, ts.URL+"/optimize", projDeptDoc)
	if status != http.StatusOK {
		t.Fatalf("optimize: HTTP %d: %v", status, out)
	}
	q = out["queries"].([]any)[0].(map[string]any)
	if q["tier"] != "greedy" {
		t.Fatalf("cold tier = %v, want greedy (budget %v, sync cold %.1fms)", q["tier"], budget, coldMS)
	}
	if q["best_plan"] == nil || q["best_plan"] == "" {
		t.Fatal("greedy tier returned no plan")
	}

	// The detached flight lands on its own schedule; poll the metrics.
	deadline := time.Now().Add(30 * time.Second)
	var metrics map[string]any
	for {
		_, metrics = getJSON(t, ts.URL+"/metrics")
		if metrics["upgraded_flights"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no upgrade within deadline: %v", metrics)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if metrics["greedy_served"].(float64) < 1 {
		t.Fatalf("greedy_served missing from /metrics: %v", metrics)
	}

	// Warm, upgraded request. The warm path normally lands well inside
	// the budget; tolerate stray greedy responses while polling.
	deadline = time.Now().Add(30 * time.Second)
	for {
		_, out = postJSON(t, ts.URL+"/optimize", projDeptDoc)
		q = out["queries"].([]any)[0].(map[string]any)
		if q["tier"] == "backchase" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm request never served the backchase tier: %v", q)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if q["upgraded"] != true || q["cache_hit"] != true {
		t.Fatalf("post-upgrade response: upgraded=%v cache_hit=%v, want true/true", q["upgraded"], q["cache_hit"])
	}
}

// getRaw fetches a URL and returns the raw body for order-sensitive
// assertions (a decoded map loses the key order under test).
func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// walkValue consumes one JSON value from dec; when path names the target
// object, its keys are appended to out in document order.
func walkValue(t *testing.T, dec *json.Decoder, path, target string, out *[]string) {
	t.Helper()
	tok, err := dec.Token()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := tok.(json.Delim)
	if !ok {
		return // scalar
	}
	switch d {
	case '{':
		for dec.More() {
			kt, err := dec.Token()
			if err != nil {
				t.Fatal(err)
			}
			k := kt.(string)
			if path == target {
				*out = append(*out, k)
			}
			child := k
			if path != "" {
				child = path + "." + k
			}
			walkValue(t, dec, child, target, out)
		}
		if _, err := dec.Token(); err != nil { // consume '}'
			t.Fatal(err)
		}
	case '[':
		for dec.More() {
			walkValue(t, dec, path+"[]", target, out)
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			t.Fatal(err)
		}
	}
}

// keyOrder returns the key order of the object at the dotted path
// (empty = document root) in a raw JSON document.
func keyOrder(t *testing.T, raw []byte, target string) []string {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	var out []string
	walkValue(t, dec, "", target, &out)
	return out
}

// TestMetricsKeyOrder pins the /metrics layout: a fixed top-level key
// order (so successive scrapes diff cleanly line by line) and
// per-instance entries sorted by name regardless of install order.
func TestMetricsKeyOrder(t *testing.T) {
	ts := testServer(t)

	// Install in anti-alphabetical order; the scrape must sort.
	for _, name := range []string{"zeta", "alpha"} {
		if status, out := postJSON(t, ts.URL+"/instance?name="+name,
			`{"workload": "projdept", "gen": {"NumDepts": 3, "ProjsPerDept": 2, "Seed": 1}}`); status != http.StatusOK {
			t.Fatalf("install %s: %d: %v", name, status, out)
		}
	}
	raw := getRaw(t, ts.URL+"/metrics")

	wantTop := []string{
		"uptime_seconds", "requests", "errors", "coalesced", "flights",
		"backchase_runs", "stats_swaps", "greedy_served", "upgraded_flights",
		"predicted_fast", "predicted_slow", "prediction_miss", "budgeted_waits",
		"predictor_entries", "cache", "chase", "histograms", "instances",
	}
	got := keyOrder(t, raw, "")
	if len(got) != len(wantTop) {
		t.Fatalf("top-level keys %v, want %v", got, wantTop)
	}
	for i := range wantTop {
		if got[i] != wantTop[i] {
			t.Fatalf("top-level key[%d] = %q, want %q (full order %v)", i, got[i], wantTop[i], got)
		}
	}
	if inst := keyOrder(t, raw, "instances"); len(inst) != 2 || inst[0] != "alpha" || inst[1] != "zeta" {
		t.Fatalf("instance order %v, want [alpha zeta]", inst)
	}
	wantHists := []string{"bucket_unit", "greedy", "backchase_sync", "backchase_upgraded", "query_plan", "query_exec"}
	if hists := keyOrder(t, raw, "histograms"); strings.Join(hists, ",") != strings.Join(wantHists, ",") {
		t.Fatalf("histogram keys %v, want %v", hists, wantHists)
	}

	// Two scrapes of an idle server must render identically apart from
	// the uptime line — the diff-cleanly contract, end to end.
	again := getRaw(t, ts.URL+"/metrics")
	strip := func(raw []byte) string {
		var kept []string
		for _, line := range strings.Split(string(raw), "\n") {
			if !strings.Contains(line, "uptime_seconds") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(raw) != strip(again) {
		t.Fatalf("idle scrapes differ:\n%s\n----\n%s", raw, again)
	}
}

// TestOptimizeTierReason: a synchronous server reports "synchronous" on
// every response; a budgeted server reports "budgeted" cold and
// "predicted-fast" warm.
func TestOptimizeTierReason(t *testing.T) {
	ts := testServer(t)
	_, out := postJSON(t, ts.URL+"/optimize", projDeptDoc)
	q := out["queries"].([]any)[0].(map[string]any)
	if q["tier_reason"] != "synchronous" {
		t.Fatalf("sync tier_reason = %v, want synchronous", q["tier_reason"])
	}

	_, mux := newServer(service.Options{Parallelism: 1, MaxPlanLatency: 30 * time.Second}, 30*time.Second)
	tts := httptest.NewServer(mux)
	t.Cleanup(tts.Close)
	_, out = postJSON(t, tts.URL+"/optimize", projDeptDoc)
	q = out["queries"].([]any)[0].(map[string]any)
	if q["tier_reason"] != "budgeted" {
		t.Fatalf("cold tier_reason = %v, want budgeted", q["tier_reason"])
	}
	_, out = postJSON(t, tts.URL+"/optimize", projDeptDoc)
	q = out["queries"].([]any)[0].(map[string]any)
	if q["tier_reason"] != "predicted-fast" || q["cache_hit"] != true {
		t.Fatalf("warm response: tier_reason=%v cache_hit=%v, want predicted-fast/true", q["tier_reason"], q["cache_hit"])
	}

	_, metrics := getJSON(t, tts.URL+"/metrics")
	if metrics["budgeted_waits"].(float64) != 1 || metrics["predicted_fast"].(float64) != 1 || metrics["predictor_entries"].(float64) != 1 {
		t.Fatalf("adaptive metrics off: %v", metrics)
	}
}

// TestMetricsHistResetOnScrape: with the reset flag on, each scrape
// reports the interval since the previous one — the second scrape of an
// idle server shows empty histograms (counters are untouched).
func TestMetricsHistResetOnScrape(t *testing.T) {
	srv, mux := newServer(service.Options{Parallelism: 1}, 30*time.Second)
	srv.histResetOnScrape = true
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/optimize", projDeptDoc)
	total := func(m map[string]any) float64 {
		return m["histograms"].(map[string]any)["backchase_sync"].(map[string]any)["total"].(float64)
	}
	_, first := getJSON(t, ts.URL+"/metrics")
	if total(first) != 1 {
		t.Fatalf("first scrape backchase_sync total = %v, want 1", total(first))
	}
	_, second := getJSON(t, ts.URL+"/metrics")
	if total(second) != 0 {
		t.Fatalf("second scrape backchase_sync total = %v, want 0 (reset on scrape)", total(second))
	}
	if second["requests"].(float64) != 1 {
		t.Fatalf("reset touched the counters: requests = %v", second["requests"])
	}
}
