package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"cnb/internal/instance"
	"cnb/internal/workload"
)

// instanceSpec is the POST /instance body: either a workload generator
// spec ("star" / "projdept" with their config/gen options) or inline
// "data" rows. Exactly one of Workload and Data must be set.
type instanceSpec struct {
	// Workload names a built-in generator: "star" (config:
	// workload.StarConfig, gen: workload.StarGenOptions — set
	// config.Snowflake for the snowflake family) or "projdept" (gen:
	// workload.GenOptions, the paper's running example).
	Workload string          `json:"workload"`
	Config   json.RawMessage `json:"config"`
	Gen      json.RawMessage `json:"gen"`
	// Data binds schema names to inline JSON values (see decodeValue for
	// the encoding) — the testing-convenience path for small instances.
	Data map[string]json.RawMessage `json:"data"`
}

// buildInstance decodes a POST /instance body into an instance.
func buildInstance(body []byte) (*instance.Instance, error) {
	var spec instanceSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	switch {
	case spec.Workload != "" && spec.Data != nil:
		return nil, fmt.Errorf("spec: workload and data are mutually exclusive")
	case spec.Workload != "":
		return generateInstance(spec)
	case spec.Data != nil:
		return decodeData(spec.Data)
	default:
		return nil, fmt.Errorf("spec: need either a workload generator spec or inline data")
	}
}

// generateInstance runs the named built-in workload generator.
func generateInstance(spec instanceSpec) (*instance.Instance, error) {
	switch spec.Workload {
	case "star":
		var cfg workload.StarConfig
		if err := unmarshalOpt(spec.Config, &cfg); err != nil {
			return nil, fmt.Errorf("spec: star config: %w", err)
		}
		var gen workload.StarGenOptions
		if err := unmarshalOpt(spec.Gen, &gen); err != nil {
			return nil, fmt.Errorf("spec: star gen: %w", err)
		}
		s, err := workload.NewStar(cfg)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		return s.Generate(gen), nil
	case "projdept":
		var gen workload.GenOptions
		if err := unmarshalOpt(spec.Gen, &gen); err != nil {
			return nil, fmt.Errorf("spec: projdept gen: %w", err)
		}
		pd, err := workload.NewProjDept()
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		return pd.Generate(gen), nil
	default:
		return nil, fmt.Errorf("spec: unknown workload %q (want star or projdept)", spec.Workload)
	}
}

func unmarshalOpt(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	return json.Unmarshal(raw, v)
}

// decodeData binds each name to its decoded inline value.
func decodeData(data map[string]json.RawMessage) (*instance.Instance, error) {
	in := instance.NewInstance()
	for name, raw := range data {
		v, err := decodeValue(raw)
		if err != nil {
			return nil, fmt.Errorf("spec: data %q: %w", name, err)
		}
		in.Bind(name, v)
	}
	return in, nil
}

// decodeValue maps JSON onto the runtime value model: numbers become Int
// when integral and Float otherwise, strings/bools map natively, arrays
// become sets, and objects become structs (fields ordered
// alphabetically, since JSON objects are unordered) — except for the two
// tagged forms {"$dict": [{"key":…, "value":…}, …]} and
// {"$oid": {"type": "T", "serial": N}}.
func decodeValue(raw json.RawMessage) (instance.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return convertValue(v)
}

func convertValue(v any) (instance.Value, error) {
	switch t := v.(type) {
	case nil:
		return nil, fmt.Errorf("null has no value encoding")
	case bool:
		return instance.Bool(t), nil
	case string:
		return instance.Str(t), nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return instance.Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.String())
		}
		return instance.Float(f), nil
	case []any:
		s := instance.NewSet()
		for _, e := range t {
			ev, err := convertValue(e)
			if err != nil {
				return nil, err
			}
			s.Add(ev)
		}
		return s, nil
	case map[string]any:
		if d, ok := t["$dict"]; ok && len(t) == 1 {
			return convertDict(d)
		}
		if o, ok := t["$oid"]; ok && len(t) == 1 {
			return convertOID(o)
		}
		names := make([]string, 0, len(t))
		for n := range t {
			names = append(names, n)
		}
		sort.Strings(names)
		vals := make([]instance.Value, len(names))
		for i, n := range names {
			fv, err := convertValue(t[n])
			if err != nil {
				return nil, fmt.Errorf("field %s: %w", n, err)
			}
			vals[i] = fv
		}
		return instance.NewStruct(names, vals), nil
	default:
		return nil, fmt.Errorf("unsupported JSON value %T", v)
	}
}

func convertDict(v any) (instance.Value, error) {
	entries, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("$dict wants an array of {key, value} objects")
	}
	d := instance.NewDict()
	for _, e := range entries {
		m, ok := e.(map[string]any)
		if !ok || len(m) != 2 {
			return nil, fmt.Errorf("$dict entry wants exactly {key, value}")
		}
		k, err := convertValue(m["key"])
		if err != nil {
			return nil, fmt.Errorf("$dict key: %w", err)
		}
		val, err := convertValue(m["value"])
		if err != nil {
			return nil, fmt.Errorf("$dict value: %w", err)
		}
		d.Put(k, val)
	}
	return d, nil
}

func convertOID(v any) (instance.Value, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("$oid wants {type, serial}")
	}
	typ, _ := m["type"].(string)
	serial, ok := m["serial"].(json.Number)
	if typ == "" || !ok {
		return nil, fmt.Errorf("$oid wants a type string and a serial number")
	}
	n, err := serial.Int64()
	if err != nil {
		return nil, fmt.Errorf("$oid serial: %w", err)
	}
	return instance.OID{TypeName: typ, Serial: int(n)}, nil
}
