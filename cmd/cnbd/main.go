// Command cnbd serves the chase & backchase optimizer over HTTP: the
// paper's universal-plan optimizer as persistent infrastructure rather
// than a one-shot CLI. Requests from any number of concurrent clients
// share one internal/service.Service — a sharded plan cache, singleflight
// coalescing of alpha-equivalent queries, and hot-swappable statistics.
//
// Endpoints:
//
//	POST /optimize  body: a cnb source document (schemas, optional
//	                design, queries — the same syntax cmd/cnb reads).
//	                Optimizes every query in the document and returns a
//	                JSON summary per query. ?design=NAME picks a design
//	                when the document declares several.
//	POST /stats     body: a JSON cost.Stats object (field names as in
//	                internal/cost.Stats: Card, EntryFanout, Distinct,
//	                ...). Atomically installs the snapshot and reports
//	                how many cache entries it invalidated. Serving
//	                continues throughout.
//	GET  /metrics   JSON dump of request, cache and chase counters.
//	GET  /healthz   liveness probe.
//
// Usage:
//
//	cnbd [-addr :8343] [-parallelism N] [-cache-size N] [-cost-bounded]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/parser"
	"cnb/internal/service"
)

// queryResult is the JSON summary of one optimized query.
type queryResult struct {
	Name              string  `json:"name"`
	UniversalBindings int     `json:"universal_bindings"`
	ChaseSteps        int     `json:"chase_steps"`
	States            int     `json:"states"`
	MinimalPlans      int     `json:"minimal_plans"`
	Candidates        int     `json:"candidates"`
	BestPlan          string  `json:"best_plan,omitempty"`
	BestCost          float64 `json:"best_cost"`
	CacheHit          bool    `json:"cache_hit"`
	Coalesced         bool    `json:"coalesced"`
	Fallback          bool    `json:"fallback,omitempty"`
	Inconsistent      bool    `json:"inconsistent,omitempty"`
	WallMS            float64 `json:"wall_ms"`
}

type optimizeResponse struct {
	Design  string        `json:"design,omitempty"`
	Queries []queryResult `json:"queries"`
}

type server struct {
	svc   *service.Service
	start time.Time
}

func main() {
	var (
		addr        = flag.String("addr", ":8343", "listen address")
		parallelism = flag.Int("parallelism", 0, "backchase worker count per flight (0 = all cores)")
		cacheSize   = flag.Int("cache-size", 0, "plan cache entry bound (0 = default, <0 = unbounded)")
		cacheShards = flag.Int("cache-shards", 0, "plan cache stripe count (0 = default)")
		costBounded = flag.Bool("cost-bounded", false, "cost-bounded best-first backchase once stats are installed")
	)
	flag.Parse()

	s := &server{
		svc: service.New(service.Options{
			Parallelism: *parallelism,
			CacheSize:   *cacheSize,
			CacheShards: *cacheShards,
			CostBounded: *costBounded,
		}),
		start: time.Now(),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	log.Printf("cnbd listening on %s (parallelism=%d cost-bounded=%v)", *addr, *parallelism, *costBounded)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}

// handleOptimize parses the posted cnb document and optimizes every query
// in it through the shared service.
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	src, ok := readBody(w, r)
	if !ok {
		return
	}
	doc, err := parser.Parse(string(src))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	design, err := pickDesign(doc, r.URL.Query().Get("design"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var deps []*core.Dependency
	var physNames map[string]bool
	resp := optimizeResponse{}
	if design != nil {
		deps = append(deps, design.Deps...)
		physNames = design.Physical.NameSet()
		resp.Design = design.Name
	}
	for _, sc := range doc.Schemas {
		deps = append(deps, sc.Dependencies()...)
	}
	if len(doc.QueryOrder) == 0 {
		httpError(w, http.StatusBadRequest, "document declares no queries")
		return
	}

	for _, name := range doc.QueryOrder {
		q := doc.Queries[name]
		start := time.Now()
		res, err := s.svc.Optimize(r.Context(), service.Request{
			Query:         q,
			Deps:          deps,
			PhysicalNames: physNames,
		})
		if err != nil {
			// 499-style: the client went away; anything else is the
			// optimizer refusing the input.
			status := http.StatusUnprocessableEntity
			if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
				status = http.StatusRequestTimeout
			}
			httpError(w, status, "query %s: %v", name, err)
			return
		}
		qr := queryResult{
			Name:              name,
			UniversalBindings: len(res.Result.Universal.Bindings),
			ChaseSteps:        len(res.Result.ChaseSteps),
			States:            res.Result.States,
			MinimalPlans:      len(res.Result.Minimal),
			Candidates:        len(res.Result.Candidates),
			CacheHit:          res.CacheHit,
			Coalesced:         res.Coalesced,
			Fallback:          res.Result.Fallback,
			Inconsistent:      res.Result.Inconsistent,
			WallMS:            float64(time.Since(start).Microseconds()) / 1000,
		}
		if res.Result.Best != nil {
			qr.BestPlan = res.Result.Best.Query.String()
			qr.BestCost = res.Result.Best.Cost
		}
		resp.Queries = append(resp.Queries, qr)
	}
	writeJSON(w, resp)
}

// handleStats installs a new statistics snapshot. The body is a JSON
// object using internal/cost.Stats field names; omitted fields keep
// NewStats defaults.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	st := cost.NewStats()
	if err := json.Unmarshal(body, st); err != nil {
		httpError(w, http.StatusBadRequest, "stats: %v", err)
		return
	}
	invalidated := s.svc.SetStats(st)
	writeJSON(w, map[string]any{
		"installed":   true,
		"fingerprint": st.Fingerprint(),
		"invalidated": invalidated,
	})
}

// handleMetrics dumps every counter the serving layer maintains.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.svc.Counters()
	cc := s.svc.CacheCounters()
	m := s.svc.ChaseMetrics()
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests":       c.Requests,
		"errors":         c.Errors,
		"coalesced":      c.Coalesced,
		"flights":        c.Flights,
		"backchase_runs": c.BackchaseRuns,
		"stats_swaps":    c.StatsSwaps,
		"cache": map[string]any{
			"hits":        cc.Hits,
			"misses":      cc.Misses,
			"evictions":   cc.Evictions,
			"invalidated": cc.Invalidated,
			"entries":     s.svc.CacheLen(),
		},
		"chase": map[string]any{
			"runs":         m.Runs.Load(),
			"steps":        m.ChaseSteps.Load(),
			"hom_tests":    m.HomTests.Load(),
			"dep_searches": m.DepSearches.Load(),
		},
	})
}

// pickDesign mirrors cmd/cnb: an explicit name must exist; with exactly
// one design it is implied; with none (or several and no name) queries
// are optimized against the logical constraints only.
func pickDesign(doc *parser.Document, name string) (*parser.DesignResult, error) {
	if name != "" {
		d := doc.Designs[name]
		if d == nil {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		return d, nil
	}
	if len(doc.Designs) == 1 {
		for _, d := range doc.Designs {
			return d, nil
		}
	}
	return nil, nil
}

// readBody reads a bounded request body (1 MiB: documents are source
// text, not data). Only an actual limit overrun is a 413; any other read
// failure (client disconnect, malformed chunking) is the client's 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "read body: %v", err)
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := fmt.Sprintf(format, args...)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("write error response: %v", err)
	}
}
