// Command cnbd serves the chase & backchase optimizer — and, with a
// registered data instance, the queries themselves — over HTTP: the
// paper's universal-plan optimizer as persistent infrastructure rather
// than a one-shot CLI. Requests from any number of concurrent clients
// share one internal/service.Service — a sharded plan cache, singleflight
// coalescing of alpha-equivalent queries, hot-swappable statistics and
// named hot-swappable instances, with delivered plans executed on the
// streaming batch engine.
//
// Endpoints: POST /optimize, POST /stats, POST /instance, GET /instance,
// POST /query, GET /metrics, GET /healthz. The request/response schemas,
// error codes and curl examples live in docs/API.md — the single source
// of truth for the HTTP surface.
//
// With -max-plan-latency set, serving is two-tiered and adaptive: a
// request whose backchase flight misses the budget is answered from the
// instant greedy tier (tier "greedy" in /optimize and /query results)
// while the flight continues detached and upgrades the plan cache, and a
// per-shape latency predictor learns from every landing so later
// requests skip the budgeted wait in both directions (tier_reason
// "predicted-fast" waits synchronously, "predicted-slow" serves greedy
// immediately, "budgeted" is the unknown-shape fallback) — /metrics
// reports greedy_served, upgraded_flights, the prediction counters and
// per-tier latency histograms (reset each scrape with
// -hist-reset-on-scrape).
//
// Usage:
//
//	cnbd [-addr :8343] [-parallelism N] [-cache-size N] [-cost-bounded]
//	     [-query-timeout 30s] [-max-plan-latency 0] [-fast-plan-latency 0]
//	     [-hist-reset-on-scrape] [-pprof-addr addr]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -pprof-addr
	"strconv"
	"time"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/parser"
	"cnb/internal/service"
)

// queryResult is the JSON summary of one optimized query.
type queryResult struct {
	Name              string  `json:"name"`
	UniversalBindings int     `json:"universal_bindings"`
	ChaseSteps        int     `json:"chase_steps"`
	States            int     `json:"states"`
	MinimalPlans      int     `json:"minimal_plans"`
	Candidates        int     `json:"candidates"`
	BestPlan          string  `json:"best_plan,omitempty"`
	BestCost          float64 `json:"best_cost"`
	Tier              string  `json:"tier"`
	TierReason        string  `json:"tier_reason"`
	Upgraded          bool    `json:"upgraded,omitempty"`
	CacheHit          bool    `json:"cache_hit"`
	Coalesced         bool    `json:"coalesced"`
	Fallback          bool    `json:"fallback,omitempty"`
	Inconsistent      bool    `json:"inconsistent,omitempty"`
	WallMS            float64 `json:"wall_ms"`
}

type optimizeResponse struct {
	Design  string        `json:"design,omitempty"`
	Queries []queryResult `json:"queries"`
}

// execMeasure is the executed plan's work profile, the counters
// StreamPlan.Measure reports (see internal/engine).
type execMeasure struct {
	Evals   int64 `json:"evals"`
	Rows    int64 `json:"rows"`
	OutRows int64 `json:"out_rows"`
}

// execResult is the JSON outcome of one executed (or explained) query.
type execResult struct {
	Name       string      `json:"name"`
	Plan       string      `json:"plan"`
	EstCost    float64     `json:"est_cost"`
	Tier       string      `json:"tier"`
	TierReason string      `json:"tier_reason"`
	Upgraded   bool        `json:"upgraded,omitempty"`
	CacheHit   bool        `json:"cache_hit"`
	Coalesced  bool        `json:"coalesced"`
	Skipped    int         `json:"skipped,omitempty"`
	Rows       []any       `json:"rows,omitempty"`
	ResultRows int         `json:"result_rows"`
	Truncated  bool        `json:"truncated,omitempty"`
	Explain    string      `json:"explain,omitempty"`
	Measure    execMeasure `json:"measure"`
	PlanMS     float64     `json:"plan_ms"`
	ExecMS     float64     `json:"exec_ms"`
	WallMS     float64     `json:"wall_ms"`
}

type execResponse struct {
	Instance string       `json:"instance"`
	Design   string       `json:"design,omitempty"`
	Queries  []execResult `json:"queries"`
}

type server struct {
	svc          *service.Service
	queryTimeout time.Duration
	start        time.Time
	// histResetOnScrape makes every GET /metrics response snapshot the
	// per-tier latency histograms and then zero them, so each scrape
	// reports the interval since the previous one (-hist-reset-on-scrape).
	histResetOnScrape bool
}

// newServer builds the shared service and its HTTP mux; split from main
// so handler tests can drive the exact production routing.
func newServer(opts service.Options, queryTimeout time.Duration) (*server, *http.ServeMux) {
	s := &server{
		svc:          service.New(opts),
		queryTimeout: queryTimeout,
		start:        time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /stats", s.handleStats)
	mux.HandleFunc("POST /instance", s.handleInstance)
	mux.HandleFunc("GET /instance", s.handleInstanceList)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, mux
}

func main() {
	var (
		addr         = flag.String("addr", ":8343", "listen address")
		parallelism  = flag.Int("parallelism", 0, "backchase worker count per flight (0 = all cores)")
		cacheSize    = flag.Int("cache-size", 0, "plan cache entry bound (0 = default, <0 = unbounded)")
		cacheShards  = flag.Int("cache-shards", 0, "plan cache stripe count (0 = default)")
		costBounded  = flag.Bool("cost-bounded", false, "cost-bounded best-first backchase once stats are installed")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "server-side execution deadline per /query request (0 = none)")
		maxPlanLat   = flag.Duration("max-plan-latency", 0, "plan-latency SLO: serve the greedy tier when the backchase flight misses this budget (0 = synchronous)")
		fastPlanLat  = flag.Duration("fast-plan-latency", 0, "predicted flight latency at or below which a shape skips the budgeted wait and serves synchronously (0 = max-plan-latency)")
		histReset    = flag.Bool("hist-reset-on-scrape", false, "zero the per-tier latency histograms after every GET /metrics, so each scrape reports the interval since the previous one")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Parse()

	srv0, mux := newServer(service.Options{
		Parallelism:       *parallelism,
		CacheSize:         *cacheSize,
		CacheShards:       *cacheShards,
		CostBounded:       *costBounded,
		MaxPlanLatency:    *maxPlanLat,
		FastPlanThreshold: *fastPlanLat,
	}, *queryTimeout)
	srv0.histResetOnScrape = *histReset

	if *pprofAddr != "" {
		// The pprof handlers self-register on DefaultServeMux (blank
		// import above); serving them on their own listener keeps the
		// profiling surface off the public API address.
		go func() {
			log.Printf("pprof listening on %s (e.g. go tool pprof http://%s/debug/pprof/profile?seconds=10)", *pprofAddr, *pprofAddr)
			srv := &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("pprof server stopped: %v", srv.ListenAndServe())
		}()
	}

	log.Printf("cnbd listening on %s (parallelism=%d cost-bounded=%v max-plan-latency=%v)", *addr, *parallelism, *costBounded, *maxPlanLat)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Fatal(srv.ListenAndServe())
}

// handleOptimize parses the posted cnb document and optimizes every query
// in it through the shared service.
func (s *server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	src, ok := readBody(w, r)
	if !ok {
		return
	}
	doc, deps, physNames, design, ok := parseDocument(w, r, src)
	if !ok {
		return
	}
	resp := optimizeResponse{}
	if design != nil {
		resp.Design = design.Name
	}

	for _, name := range doc.QueryOrder {
		q := doc.Queries[name]
		start := time.Now()
		res, err := s.svc.Optimize(r.Context(), service.Request{
			Query:         q,
			Deps:          deps,
			PhysicalNames: physNames,
		})
		if err != nil {
			httpError(w, errStatus(r, err), "query %s: %v", name, err)
			return
		}
		qr := queryResult{
			Name:              name,
			UniversalBindings: len(res.Result.Universal.Bindings),
			ChaseSteps:        len(res.Result.ChaseSteps),
			States:            res.Result.States,
			MinimalPlans:      len(res.Result.Minimal),
			Candidates:        len(res.Result.Candidates),
			Tier:              string(res.Tier),
			TierReason:        string(res.TierReason),
			Upgraded:          res.Upgraded,
			CacheHit:          res.CacheHit,
			Coalesced:         res.Coalesced,
			Fallback:          res.Result.Fallback,
			Inconsistent:      res.Result.Inconsistent,
			WallMS:            float64(time.Since(start).Microseconds()) / 1000,
		}
		if res.Result.Best != nil {
			qr.BestPlan = res.Result.Best.Query.String()
			qr.BestCost = res.Result.Best.Cost
		}
		resp.Queries = append(resp.Queries, qr)
	}
	writeJSON(w, resp)
}

// handleQuery optimizes AND executes every query of the posted cnb
// document against the instance named by ?instance. ?explain=1 returns
// the streaming operator tree instead of rows, ?max_rows caps the
// result encoding, ?timeout_ms overrides the server-side deadline.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, ok := readBody(w, r)
	if !ok {
		return
	}
	instName := r.URL.Query().Get("instance")
	if instName == "" {
		httpError(w, http.StatusBadRequest, "query: missing ?instance=NAME")
		return
	}
	explain := r.URL.Query().Get("explain") != ""
	maxRows := 0
	if mr := r.URL.Query().Get("max_rows"); mr != "" {
		n, err := strconv.Atoi(mr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "query: bad max_rows %q", mr)
			return
		}
		maxRows = n
	}
	timeout := s.queryTimeout
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		n, err := strconv.Atoi(tm)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "query: bad timeout_ms %q", tm)
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	doc, deps, physNames, design, ok := parseDocument(w, r, src)
	if !ok {
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	resp := execResponse{Instance: instName}
	if design != nil {
		resp.Design = design.Name
	}
	for _, name := range doc.QueryOrder {
		start := time.Now()
		qres, err := s.svc.Query(ctx, service.QueryRequest{
			Request: service.Request{
				Query:         doc.Queries[name],
				Deps:          deps,
				PhysicalNames: physNames,
			},
			Instance: instName,
			MaxRows:  maxRows,
			Explain:  explain,
		})
		if err != nil {
			httpError(w, errStatus(r, err), "query %s: %v", name, err)
			return
		}
		er := execResult{
			Name:       name,
			Plan:       qres.Plan,
			EstCost:    qres.EstCost,
			Tier:       string(qres.Optimize.Tier),
			TierReason: string(qres.Optimize.TierReason),
			Upgraded:   qres.Optimize.Upgraded,
			CacheHit:   qres.Optimize.CacheHit,
			Coalesced:  qres.Optimize.Coalesced,
			Skipped:    qres.Skipped,
			ResultRows: qres.ResultRows,
			Truncated:  qres.Truncated,
			Explain:    qres.Explain,
			Measure: execMeasure{
				Evals:   qres.Measure.Evals,
				Rows:    qres.Measure.Rows,
				OutRows: qres.Measure.OutRows,
			},
			PlanMS: float64(qres.PlanDur.Microseconds()) / 1000,
			ExecMS: float64(qres.ExecDur.Microseconds()) / 1000,
			WallMS: float64(time.Since(start).Microseconds()) / 1000,
		}
		if !explain {
			er.Rows = make([]any, 0, len(qres.Rows))
			for _, v := range qres.Rows {
				er.Rows = append(er.Rows, service.ValueJSON(v))
			}
		}
		resp.Queries = append(resp.Queries, er)
	}
	writeJSON(w, resp)
}

// handleInstance installs (or atomically replaces) a named instance from
// the posted spec — a workload generator spec or inline data rows (see
// buildInstance and docs/API.md).
func (s *server) handleInstance(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "instance: missing ?name=NAME")
		return
	}
	in, err := buildInstance(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}
	sum, err := s.svc.InstallInstance(name, in)
	if err != nil {
		httpError(w, http.StatusBadRequest, "instance: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"installed":   true,
		"name":        sum.Name,
		"collections": sum.Collections,
		"rows":        sum.Rows,
		"cards":       sum.Cards,
	})
}

// handleInstanceList reports the summary of every registered instance.
func (s *server) handleInstanceList(w http.ResponseWriter, r *http.Request) {
	sums := s.svc.Instances()
	out := make([]map[string]any, 0, len(sums))
	for _, sum := range sums {
		out = append(out, map[string]any{
			"name":        sum.Name,
			"collections": sum.Collections,
			"rows":        sum.Rows,
			"cards":       sum.Cards,
		})
	}
	writeJSON(w, map[string]any{"instances": out})
}

// handleStats installs a new statistics snapshot. The body is a JSON
// object using internal/cost.Stats field names; omitted fields keep
// NewStats defaults.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	st := cost.NewStats()
	if err := json.Unmarshal(body, st); err != nil {
		httpError(w, http.StatusBadRequest, "stats: %v", err)
		return
	}
	invalidated := s.svc.SetStats(st)
	writeJSON(w, map[string]any{
		"installed":   true,
		"fingerprint": st.Fingerprint(),
		"invalidated": invalidated,
	})
}

// kv is one key of an orderedObj.
type kv struct {
	k string
	v any
}

// orderedObj is a JSON object whose keys marshal in insertion order.
// /metrics renders through it so the whole document — including the
// per-instance section, inserted in Instances()'s name-sorted order —
// has one deterministic key order and successive scrapes diff cleanly
// line by line (a plain map hands the layout to encoding/json instead
// of the handler, and anything non-map, like a struct, would freeze the
// dynamic instance names out entirely). TestMetricsKeyOrder pins the
// rendered order.
type orderedObj []kv

// MarshalJSON renders the object with keys in insertion order. Nested
// values go back through json.Marshal, so nested orderedObj values
// order their keys the same way.
func (o orderedObj) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, e := range o {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(e.k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		vb, err := json.Marshal(e.v)
		if err != nil {
			return nil, err
		}
		b.Write(vb)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// histogramJSON renders one per-tier latency snapshot: the bucket
// layout is log2 microseconds (buckets[0] is <1µs, buckets[i] covers
// [2^(i-1), 2^i) µs, the last bucket absorbs everything larger) and
// total is the exact sum of buckets — the number of requests recorded.
func histogramJSON(h service.HistogramSnapshot) orderedObj {
	return orderedObj{
		{"total", h.Total},
		{"buckets", h.Counts},
	}
}

// handleMetrics dumps every counter the serving layer maintains,
// including the cumulative executed-query accounting per instance and
// the per-tier latency histograms. With -hist-reset-on-scrape the
// histograms are zeroed after the snapshot, so each scrape reports the
// interval since the previous one.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.svc.Counters()
	cc := s.svc.CacheCounters()
	m := s.svc.ChaseMetrics()
	h := s.svc.Histograms()
	if s.histResetOnScrape {
		s.svc.ResetHistograms()
	}
	instances := orderedObj{}
	for _, sum := range s.svc.Instances() {
		qc, _ := s.svc.InstanceCountersFor(sum.Name)
		instances = append(instances, kv{sum.Name, orderedObj{
			{"collections", sum.Collections},
			{"data_rows", sum.Rows},
			{"queries", qc.Queries},
			{"rows_emitted", qc.Rows},
			{"evals", qc.Evals},
			{"exec_errors", qc.ExecErrors},
		}})
	}
	writeJSON(w, orderedObj{
		{"uptime_seconds", time.Since(s.start).Seconds()},
		{"requests", c.Requests},
		{"errors", c.Errors},
		{"coalesced", c.Coalesced},
		{"flights", c.Flights},
		{"backchase_runs", c.BackchaseRuns},
		{"stats_swaps", c.StatsSwaps},
		{"greedy_served", c.GreedyServed},
		{"upgraded_flights", c.Upgraded},
		{"predicted_fast", c.PredictedFast},
		{"predicted_slow", c.PredictedSlow},
		{"prediction_miss", c.PredictionMiss},
		{"budgeted_waits", c.BudgetedWaits},
		{"predictor_entries", s.svc.PredictorLen()},
		{"cache", orderedObj{
			{"hits", cc.Hits},
			{"misses", cc.Misses},
			{"evictions", cc.Evictions},
			{"invalidated", cc.Invalidated},
			{"entries", s.svc.CacheLen()},
		}},
		{"chase", orderedObj{
			{"runs", m.Runs.Load()},
			{"steps", m.ChaseSteps.Load()},
			{"hom_tests", m.HomTests.Load()},
			{"dep_searches", m.DepSearches.Load()},
		}},
		{"histograms", orderedObj{
			{"bucket_unit", "log2_us"},
			{"greedy", histogramJSON(h.Greedy)},
			{"backchase_sync", histogramJSON(h.BackchaseSync)},
			{"backchase_upgraded", histogramJSON(h.BackchaseUpgraded)},
			{"query_plan", histogramJSON(h.QueryPlan)},
			{"query_exec", histogramJSON(h.QueryExec)},
		}},
		{"instances", instances},
	})
}

// parseDocument parses a cnb source body and assembles the dependency
// set shared by /optimize and /query: the picked design's deps plus
// every schema's. On failure it writes the HTTP error itself and
// returns ok=false.
func parseDocument(w http.ResponseWriter, r *http.Request, src []byte) (doc *parser.Document, deps []*core.Dependency, physNames map[string]bool, design *parser.DesignResult, ok bool) {
	doc, err := parser.Parse(string(src))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return nil, nil, nil, nil, false
	}
	design, err = pickDesign(doc, r.URL.Query().Get("design"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, nil, false
	}
	if design != nil {
		deps = append(deps, design.Deps...)
		physNames = design.Physical.NameSet()
	}
	for _, sc := range doc.Schemas {
		deps = append(deps, sc.Dependencies()...)
	}
	if len(doc.QueryOrder) == 0 {
		httpError(w, http.StatusBadRequest, "document declares no queries")
		return nil, nil, nil, nil, false
	}
	return doc, deps, physNames, design, true
}

// errStatus maps a service error onto its HTTP status: an unknown
// instance is the client's 404, a deadline/cancellation is 408, and
// anything else — optimizer refusals, non-executable plans, failing
// lookups on the instance data — is a 422.
func errStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownInstance):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled),
		errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		return http.StatusRequestTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// pickDesign mirrors cmd/cnb: an explicit name must exist; with exactly
// one design it is implied; with none (or several and no name) queries
// are optimized against the logical constraints only.
func pickDesign(doc *parser.Document, name string) (*parser.DesignResult, error) {
	if name != "" {
		d := doc.Designs[name]
		if d == nil {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		return d, nil
	}
	if len(doc.Designs) == 1 {
		for _, d := range doc.Designs {
			return d, nil
		}
	}
	return nil, nil
}

// readBody reads a bounded request body (1 MiB: documents are source
// text, not data). Only an actual limit overrun is a 413; any other read
// failure (client disconnect, malformed chunking) is the client's 400.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "read body: %v", err)
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := fmt.Sprintf(format, args...)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": msg}); err != nil {
		log.Printf("write error response: %v", err)
	}
}
