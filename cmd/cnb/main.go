// Command cnb is the chase & backchase optimizer CLI: it parses a source
// file containing schemas, a physical design and queries (see
// internal/parser for the syntax), runs Algorithm 1 on each query, and
// prints the universal plan, the candidate plans and the chosen plan.
//
// Usage:
//
//	cnb [-design NAME] [-all] file.cnb
//	cnb -example        # run the paper's ProjDept example inline
package main

import (
	"flag"
	"fmt"
	"os"

	"cnb/internal/backchase"
	"cnb/internal/core"
	"cnb/internal/optimizer"
	"cnb/internal/parser"
)

const exampleSource = `
schema Logical {
  Proj  : set<{PName: string, CustName: string, PDept: string, Budg: int}>;
  depts : set<{DName: string, DProjs: set<string>, MgrName: string}>;

  constraint RIC1:
    forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName;
  constraint RIC2:
    forall (p in Proj) exists (d in depts) p.PDept = d.DName;
  constraint INV1:
    forall (d in depts, s in d.DProjs, p in Proj) s = p.PName -> p.PDept = d.DName;
  constraint INV2:
    forall (p in Proj, d in depts) p.PDept = d.DName -> exists (s in d.DProjs) p.PName = s;
  constraint KEY1:
    forall (a in depts, b in depts) a.DName = b.DName -> a = b;
  constraint KEY2:
    forall (a in Proj, b in Proj) a.PName = b.PName -> a = b;
}

design Phys over Logical {
  store Proj;
  classdict Dept for depts oid Doid;
  primary index I on Proj(PName);
  secondary index SI on Proj(CustName);
  view JI: select struct(DOID: dd, PN: p.PName)
           from dom(Dept) dd, Dept[dd].DProjs s, Proj p
           where s = p.PName;
}

query Q:
  select struct(PN: s, PB: p.Budg, DN: d.DName)
  from depts d, d.DProjs s, Proj p
  where s = p.PName and p.CustName = "CitiBank";
`

func main() {
	var (
		designName  = flag.String("design", "", "physical design to optimize against (default: the only one)")
		showAll     = flag.Bool("all", false, "print every candidate plan, not only the best")
		example     = flag.Bool("example", false, "run the built-in ProjDept example")
		parallelism = flag.Int("parallelism", 0, "backchase worker count (0 = all cores, 1 = serial)")
		noCache     = flag.Bool("no-plan-cache", false, "disable the cross-query backchase plan cache")
	)
	flag.Parse()

	var src string
	switch {
	case *example:
		src = exampleSource
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	default:
		fatal("usage: cnb [-design NAME] [-all] file.cnb | cnb -example")
	}

	doc, err := parser.Parse(src)
	if err != nil {
		fatal("%v", err)
	}

	design := pickDesign(doc, *designName)
	var deps []*core.Dependency
	var physNames map[string]bool
	if design != nil {
		deps = append(deps, design.Deps...)
		physNames = design.Physical.NameSet()
		fmt.Printf("physical design %s: %v\n\n", design.Name, design.Physical.Names())
	}
	for _, s := range doc.Schemas {
		deps = append(deps, s.Dependencies()...)
	}

	// One plan cache across every query in the file: canonically identical
	// universal plans (e.g. alpha-renamed repeats of the same query) skip
	// the backchase entirely.
	var cache *backchase.PlanCache
	if !*noCache {
		cache = backchase.NewPlanCache()
	}
	for _, name := range doc.QueryOrder {
		q := doc.Queries[name]
		fmt.Printf("--- query %s ---\n%s\n\n", name, q)
		res, err := optimizer.Optimize(q, optimizer.Options{
			Deps:          deps,
			PhysicalNames: physNames,
			Parallelism:   *parallelism,
			Backchase:     backchase.Options{Cache: cache},
		})
		if err != nil {
			fatal("optimizing %s: %v", name, err)
		}
		fmt.Printf("universal plan (%d bindings, %d chase steps):\n%s\n\n",
			len(res.Universal.Bindings), len(res.ChaseSteps), res.Universal)
		cached := ""
		if res.BackchaseCached {
			cached = " (backchase served from plan cache)"
		}
		fmt.Printf("%d minimal plans, %d backchase states, %d candidates%s\n\n",
			len(res.Minimal), res.States, len(res.Candidates), cached)
		if *showAll {
			for i, c := range res.Candidates {
				fmt.Printf("candidate %d (est. cost %.1f):\n%s\n\n", i+1, c.Cost, c.Query)
			}
		}
		if res.Best != nil {
			fmt.Printf("best plan (est. cost %.1f):\n%s\n\n", res.Best.Cost, res.Best.Query)
		}
		if res.Inconsistent {
			fmt.Println("note: the query is empty on all instances satisfying the constraints")
		}
	}
}

func pickDesign(doc *parser.Document, name string) *parser.DesignResult {
	if name != "" {
		d := doc.Designs[name]
		if d == nil {
			fatal("unknown design %q", name)
		}
		return d
	}
	if len(doc.Designs) == 1 {
		for _, d := range doc.Designs {
			return d
		}
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
