# CI entry points for the chase & backchase optimizer.
#
#   make ci         - everything a regression gate needs: vet, build, the
#                     full test suite, a race-detector pass over the
#                     concurrency-heavy packages, and a one-iteration
#                     benchmark smoke so the benchmark harness itself
#                     cannot rot.
#   make test       - fast feedback: plain test run, no race detector.
#   make race       - race-detector run of the concurrency-heavy packages
#                     (the parallel backchase engine and everything it
#                     shares state with), not the whole module.
#   make cover      - coverage profile over internal/... with a floor:
#                     fails below $(COVER_FLOOR)%.
#   make bench      - the real benchmark sweep (longer).
#   make bench-json - run the experiments and write $(BENCH_JSON), the
#                     machine-readable perf trajectory CI archives.
#   make bench-check - regenerate $(BENCH_JSON) at parallelism 1 and gate
#                     it against the committed BENCH_BASELINE.json:
#                     fails on >10% growth of any *_states metric or any
#                     cheapest-cost change (see cmd/benchcheck). After an
#                     intentional search change, regenerate the baseline
#                     with make bench-baseline and commit it.
#   make bench-exec - run the E18 measured-execution experiment at the
#                     CI data tier ($(EXEC_ROWS) fact rows) under a hard
#                     wall-clock timeout; E18 hard-fails unless the
#                     optimizer's delivered plan beats the baseline with
#                     an identical result set. Nightly tiers: run with
#                     EXEC_ROWS=1000000 (or 10000000) and a larger
#                     EXEC_TIMEOUT.
#   make lint-docs  - godoc gate: cmd/lintdoc (a dependency-free
#                     equivalent of revive's "exported" rule) over the
#                     packages whose exported API is documented
#                     contractually (engine, service, core, cost,
#                     greedy).
#   make serve-load - race-instrumented serving gate: the 16-worker load
#                     harnesses (plan-only and end-to-end /query) plus
#                     the singleflight storm/cancellation suites and the
#                     query-execution suites (instance hot-swap race,
#                     mid-stream cancellation leak check, exec-error
#                     surfacing), in -short mode so CI pays minutes,
#                     not tens of minutes.
#   make serve-cold - race-instrumented two-tier serving gate: E20's
#                     cold-shape replay (greedy tier, detached upgrade,
#                     differential checks) plus the tier/singleflight
#                     detachment suites and the percentile and greedy
#                     planner unit tests. Not -short: the cold replay
#                     IS the gate.
#   make serve-adaptive - race-instrumented adaptive-promotion gate:
#                     E21's three-phase predictor replay (train cold,
#                     serve trained with zero budgeted waits) plus the
#                     latency-predictor and histogram unit suites and
#                     the cnbd tier_reason / metrics-ordering handler
#                     tests. Not -short: the trained replay IS the
#                     gate.
#   make serve-smoke - build cnbd, start it, optimize the ProjDept
#                     example twice over HTTP (the second round must be
#                     a plan-cache hit), install a generated instance
#                     and query it end to end (rows must come back),
#                     install a stats snapshot, and shut it down. Fails
#                     on any error response.
#
# Set GOFLAGS=-short to skip the slow paths: experiment tests skip
# themselves and bench-smoke becomes a no-op.

GO ?= go
COVER_FLOOR ?= 70
BENCH_JSON ?= BENCH_PR3.json
BENCH_BASELINE ?= BENCH_BASELINE.json
# State counts of the cost-bounded search are deterministic only for a
# serial run; the gate always measures at parallelism 1.
BENCH_GATE_FLAGS = -parallelism 1

# The packages whose tests exercise shared mutable state across
# goroutines: the worker-pool backchase engine, the chase it drives
# concurrently, the congruence closures cloned across workers, the
# optimizer that parallelizes both, and the serving layer that coalesces
# concurrent requests over all of them. core rides along for the
# canonicalization property/stress suite that every concurrent cache key
# depends on.
RACE_PKGS = ./internal/backchase/... ./internal/chase/... ./internal/congruence/... ./internal/optimizer/... ./internal/service/... ./internal/core/...

# Where serve-smoke binds its throwaway server.
CNBD_ADDR ?= 127.0.0.1:18343

# E18 data tier and wall-clock ceiling for bench-exec. The CI tier is
# 10^5 fact rows; nightly runs override both.
EXEC_ROWS ?= 100000
EXEC_TIMEOUT ?= 600

.PHONY: ci vet build test race bench-smoke bench bench-json bench-check bench-baseline bench-exec lint-docs cover serve-load serve-cold serve-adaptive serve-smoke

ci: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Skipped under GOFLAGS=-short: a docs-only or fast-lane run should not
# pay for compiling and executing every benchmark.
bench-smoke:
ifneq (,$(findstring -short,$(GOFLAGS)))
	@echo "bench-smoke: skipped (GOFLAGS contains -short)"
else
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
endif

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

bench-json:
	$(GO) run ./cmd/chasebench -json-out $(BENCH_JSON)

bench-check:
	$(GO) run ./cmd/chasebench $(BENCH_GATE_FLAGS) -json-out $(BENCH_JSON)
	$(GO) run ./cmd/benchcheck -baseline $(BENCH_BASELINE) -current $(BENCH_JSON)

bench-baseline:
	$(GO) run ./cmd/chasebench $(BENCH_GATE_FLAGS) -json-out $(BENCH_BASELINE)

# Measured execution at data scale: E18 hard-fails internally when the
# optimized plan does not beat the baseline or the result sets differ,
# so the target needs no output parsing — only a timeout so a pipeline
# stall cannot hang CI. The binary is prebuilt so the timeout budget is
# spent executing, not compiling.
bench-exec:
	@mkdir -p bin
	$(GO) build -o bin/chasebench ./cmd/chasebench
	timeout $(EXEC_TIMEOUT) ./bin/chasebench -exp E18 -parallelism 1 -exec-rows $(EXEC_ROWS)

# Godoc gate over the contractually documented packages. Runs in CI's
# lint job next to staticcheck; the tool is in-repo because the gate
# cannot install third-party linters.
lint-docs:
	$(GO) run ./cmd/lintdoc ./internal/engine ./internal/service ./internal/core ./internal/cost ./internal/greedy

# The CI service-load gate: the closed-loop load harnesses (16 workers
# replaying the star/snowflake mix against one Service, plan-only and
# end-to-end through Service.Query) and the singleflight/cancellation
# and query-execution suites, all under the race detector. -short keeps
# the race-instrumented run to a few hundred requests.
serve-load:
	$(GO) test -race -short -count=1 \
		-run 'TestServiceLoadHarness|TestQueryLoadHarness|TestRunQueryLoad|TestSingleflight|TestAlphaRenamed|TestWaiterCancellation|TestLastCallerCancellation|TestSetStats|TestStatsSwap|TestQuery|TestInstallInstance' \
		./internal/bench ./internal/service ./cmd/cnbd

# The CI two-tier serving gate: the E20 cold-shape replay (not -short —
# the three cold backchases are the point) plus the tiering, detachment
# and degenerate-percentile suites, all race-instrumented, and the
# greedy planner package's full suite including the row-engine
# differential.
serve-cold:
	$(GO) test -race -count=1 \
		-run 'TestE20ColdTiered|TestTiered|TestDetachedFlight|TestWarmShape|TestPercentile|TestTieredOptimizeEndToEnd' \
		./internal/bench ./internal/service ./cmd/cnbd
	$(GO) test -race -count=1 ./internal/greedy

# The CI adaptive-promotion gate: the E21 replay (not -short — the cold
# training pass and the zero-wait trained pass are the point) plus the
# predictor edge-case suite (cold start, EWMA rules, abandoned-flight
# training, eviction, stats-swap invalidation), the histogram suites,
# and the cnbd handler tests that pin tier_reason and the /metrics key
# order, all race-instrumented.
serve-adaptive:
	$(GO) test -race -count=1 \
		-run 'TestE21Adaptive|TestPredictor|TestClassify|TestFastPlan|TestPredicted|TestSynchronousReason|TestHistogram|TestServiceHistograms|TestQueryHistograms|TestMetricsKeyOrder|TestOptimizeTierReason|TestMetricsHistResetOnScrape' \
		./internal/bench ./internal/service ./cmd/cnbd

# End-to-end smoke of the cnbd server: start it, run the example client
# (two optimize rounds — the second must be served from the plan cache —
# then an instance install and two /query rounds that must return rows,
# then a metrics dump), install a statistics snapshot, and stop it.
serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/cnbd ./cmd/cnbd
	@set -e; \
	./bin/cnbd -addr $(CNBD_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=0; \
	for i in $$(seq 1 50); do \
		if curl -sf http://$(CNBD_ADDR)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	[ "$$ok" = 1 ] || { echo "serve-smoke: cnbd did not come up" >&2; exit 1; }; \
	$(GO) run ./examples/cnbdclient -addr http://$(CNBD_ADDR) | tee bin/serve-smoke.out; \
	grep -q '"cache_hit": true' bin/serve-smoke.out || { echo "serve-smoke: second round was not a cache hit" >&2; exit 1; }; \
	grep -q '"installed": true' bin/serve-smoke.out || { echo "serve-smoke: instance install did not succeed" >&2; exit 1; }; \
	grep -q '"result_rows"' bin/serve-smoke.out || { echo "serve-smoke: /query returned no result accounting" >&2; exit 1; }; \
	curl -sf -X POST -d '{"Card":{"Proj":5000}}' http://$(CNBD_ADDR)/stats >/dev/null; \
	curl -sf http://$(CNBD_ADDR)/metrics >/dev/null; \
	echo "serve-smoke: OK"

cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | tail -n 1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t + 0 < floor + 0) { printf "coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		printf "coverage %.1f%% meets the %s%% floor\n", t, floor }'
