# CI entry points for the chase & backchase optimizer.
#
#   make ci      - everything a regression gate needs: vet, build, the
#                  full test suite under the race detector (the parallel
#                  backchase engine is exercised concurrently throughout),
#                  and a one-iteration benchmark smoke so the benchmark
#                  harness itself cannot rot.
#   make test    - fast feedback: plain test run, no race detector.
#   make race    - race-detector run of the concurrency-heavy packages.
#   make bench   - the real benchmark sweep (longer).

GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
