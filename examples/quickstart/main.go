// Quickstart: declare a relational schema with a secondary index, run the
// chase & backchase optimizer on a selection query, and execute the chosen
// plan against in-memory data.
package main

import (
	"fmt"
	"log"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/instance"
	"cnb/internal/optimizer"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

func main() {
	// 1. Logical schema: one relation Users(Name, City, Age).
	logical := schema.New("app")
	logical.MustAddElement("Users", types.SetOf(types.StructOf(
		types.F("Name", types.StringT()),
		types.F("City", types.StringT()),
		types.F("Age", types.Int()),
	)), "users relation")

	// 2. Physical design: Users stored directly plus a secondary index on
	// City. Build() compiles the design into constraints.
	design := physical.NewDesign(logical).
		Add(physical.DirectStorage{Name: "Users"}).
		Add(physical.SecondaryIndex{Name: "ByCity", Relation: "Users", Attribute: "City"})
	phys, deps, _, err := design.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. The logical query: names of users in Edinburgh.
	q := &core.Query{
		Out:      core.Prj(core.V("u"), "Name"),
		Bindings: []core.Binding{{Var: "u", Range: core.Name("Users")}},
		Conds:    []core.Cond{{L: core.Prj(core.V("u"), "City"), R: core.C("Edinburgh")}},
	}
	fmt.Println("logical query:")
	fmt.Println(q)

	// 4. Data + statistics.
	users := instance.NewSet()
	byCity := map[string]*instance.Set{}
	for i, u := range []struct {
		name, city string
		age        int64
	}{
		{"ada", "Edinburgh", 36}, {"alan", "London", 41},
		{"grace", "Edinburgh", 40}, {"edsger", "Austin", 70},
	} {
		row := instance.StructOf("Name", instance.Str(u.name),
			"City", instance.Str(u.city), "Age", instance.Int(u.age))
		users.Add(row)
		if byCity[u.city] == nil {
			byCity[u.city] = instance.NewSet()
		}
		byCity[u.city].Add(row)
		_ = i
	}
	cityIdx := instance.NewDict()
	for c, rows := range byCity {
		cityIdx.Put(instance.Str(c), rows)
	}
	in := instance.NewInstance()
	in.Bind("Users", users)
	in.Bind("ByCity", cityIdx)

	// 5. Optimize: chase to the universal plan, backchase to the minimal
	// plans, pick the cheapest.
	res, err := optimizer.Optimize(q, optimizer.Options{
		Deps:          deps,
		PhysicalNames: phys.NameSet(),
		Stats:         cost.FromInstance(in),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniversal plan:\n%s\n", res.Universal)
	fmt.Printf("\nbest plan (est. cost %.1f):\n%s\n", res.Best.Cost, res.Best.Query)

	// 6. Execute the chosen plan.
	out, err := engine.Execute(res.Best.Query, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresult: %s\n", out)
}
