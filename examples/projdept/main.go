// ProjDept: the paper's running example end to end (§1–§3). Prints the
// logical query Q, the chase trace, the universal plan, every minimal
// plan classified against the paper's P1–P4, and executes the best plan
// on generated data, verifying it against the reference evaluation of Q.
package main

import (
	"fmt"
	"log"

	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

func main() {
	pd, err := workload.NewProjDept()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== logical schema (Figure 2) ===")
	fmt.Println(pd.Logical)
	fmt.Println("\n=== physical schema (Figure 3) ===")
	fmt.Println(pd.Physical)
	fmt.Println("\n=== query Q ===")
	fmt.Println(pd.Q)

	in := pd.Generate(workload.GenOptions{
		NumDepts: 100, ProjsPerDept: 10, CitiBankShare: 0.02, Seed: 42,
	})
	res, err := optimizer.Optimize(pd.Q, optimizer.Options{
		Deps:          pd.AllDeps(),
		PhysicalNames: pd.Physical.NameSet(),
		Stats:         cost.FromInstance(in),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== chase trace (phase 1) ===")
	for i, s := range res.ChaseSteps {
		fmt.Printf("%2d. %s\n", i+1, s.Dep)
	}
	fmt.Println("\n=== universal plan ===")
	fmt.Println(res.Universal)

	fmt.Printf("\n=== %d minimal plans (phase 2; %d states explored) ===\n",
		len(res.Minimal), res.States)
	for i, p := range res.Minimal {
		fmt.Printf("\nplan %d:\n%s\n", i+1, p)
	}

	fmt.Printf("\n=== best plan (est. cost %.1f) ===\n", res.Best.Cost)
	fmt.Println(res.Best.Query)

	got, err := engine.Execute(res.Best.Query, in)
	if err != nil {
		log.Fatal(err)
	}
	want, err := eval.Query(pd.Q, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted best plan: %d rows; matches Q: %v\n", got.Len(), got.Equal(want))
}
