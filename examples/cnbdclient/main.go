// Command cnbdclient is a minimal client for the cnbd server: it posts
// a cnb source document to POST /optimize twice — the second round
// demonstrates the plan cache (cache_hit: true, identical best plan, a
// fraction of the wall time) — then installs a generated ProjDept
// instance via POST /instance and runs the same document end to end
// through POST /query twice (rows come back, the second round is a
// warm cache hit), and finally dumps GET /metrics with the
// per-instance executed-query counters. The full HTTP surface is
// documented in docs/API.md.
//
// Start the server, then run the client:
//
//	go run ./cmd/cnbd -addr :8343 &
//	go run ./examples/cnbdclient -addr http://localhost:8343
//
// Pass -file to post your own document instead of the built-in ProjDept
// example (the paper's running example, same source cmd/cnb -example
// uses); note /query rounds still run against the generated ProjDept
// instance, so a custom document must target its schema.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

const exampleSource = `
schema Logical {
  Proj  : set<{PName: string, CustName: string, PDept: string, Budg: int}>;
  depts : set<{DName: string, DProjs: set<string>, MgrName: string}>;

  constraint RIC1:
    forall (d in depts, s in d.DProjs) exists (p in Proj) s = p.PName;
  constraint RIC2:
    forall (p in Proj) exists (d in depts) p.PDept = d.DName;
  constraint INV1:
    forall (d in depts, s in d.DProjs, p in Proj) s = p.PName -> p.PDept = d.DName;
  constraint INV2:
    forall (p in Proj, d in depts) p.PDept = d.DName -> exists (s in d.DProjs) p.PName = s;
  constraint KEY1:
    forall (a in depts, b in depts) a.DName = b.DName -> a = b;
  constraint KEY2:
    forall (a in Proj, b in Proj) a.PName = b.PName -> a = b;
}

design Phys over Logical {
  store Proj;
  classdict Dept for depts oid Doid;
  primary index I on Proj(PName);
  secondary index SI on Proj(CustName);
  view JI: select struct(DOID: dd, PN: p.PName)
           from dom(Dept) dd, Dept[dd].DProjs s, Proj p
           where s = p.PName;
}

query Q:
  select struct(PN: s, PB: p.Budg, DN: d.DName)
  from depts d, d.DProjs s, Proj p
  where s = p.PName and p.CustName = "CitiBank";
`

func main() {
	var (
		addr = flag.String("addr", "http://localhost:8343", "cnbd base URL")
		file = flag.String("file", "", "cnb document to post (default: built-in ProjDept example)")
	)
	flag.Parse()

	src := exampleSource
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal("%v", err)
		}
		src = string(data)
	}

	for round := 1; round <= 2; round++ {
		fmt.Printf("--- POST /optimize (round %d) ---\n", round)
		post(*addr+"/optimize", src)
	}

	// End-to-end: install a generated instance of the running example's
	// schema, then execute the delivered plan against it. The second
	// round is served from the warm plan cache ("cache_hit": true).
	fmt.Println("--- POST /instance?name=pd ---")
	post(*addr+"/instance?name=pd",
		`{"workload": "projdept", "gen": {"NumDepts": 20, "ProjsPerDept": 5, "CitiBankShare": 0.3, "Seed": 5}}`)
	for round := 1; round <= 2; round++ {
		fmt.Printf("--- POST /query?instance=pd&max_rows=3 (round %d) ---\n", round)
		post(*addr+"/query?instance=pd&max_rows=3", src)
	}

	fmt.Println("--- GET /metrics ---")
	get(*addr + "/metrics")
}

func post(url, body string) {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		fatal("%v", err)
	}
	dump(resp)
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatal("%v", err)
	}
	dump(resp)
}

func dump(resp *http.Response) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal("%v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal("HTTP %d: %s", resp.StatusCode, data)
	}
	fmt.Printf("%s\n", data)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
