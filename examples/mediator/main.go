// Mediator: the information-integration motivation of §1. A mediator
// exposes a logical schema over two sources: one source only answers
// lookups by ISBN (a binding-pattern capability modeled as a dictionary),
// the other publishes a materialized view join. The chase & backchase
// rewrites the mediated query to respect the source capabilities.
package main

import (
	"fmt"
	"log"

	"cnb/internal/core"
	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/instance"
	"cnb/internal/optimizer"
	"cnb/internal/physical"
	"cnb/internal/schema"
	"cnb/internal/types"
)

func main() {
	// Logical schema: Books(ISBN, Title, Year) and Reviews(ISBN, Score).
	logical := schema.New("mediator")
	logical.MustAddElement("Books", types.SetOf(types.StructOf(
		types.F("ISBN", types.StringT()),
		types.F("Title", types.StringT()),
		types.F("Year", types.Int()),
	)), "logical books")
	logical.MustAddElement("Reviews", types.SetOf(types.StructOf(
		types.F("ISBN", types.StringT()),
		types.F("Score", types.Int()),
	)), "logical reviews")

	// Source capabilities:
	// - Source 1 answers only ISBN lookups on books: a primary index
	//   (dictionary) capability, not a scannable relation.
	// - Source 2 publishes reviews directly and a materialized join view
	//   of recent reviewed books.
	design := physical.NewDesign(logical).
		Add(physical.DirectStorage{Name: "Reviews"}).
		Add(physical.PrimaryIndex{Name: "BookByISBN", Relation: "Books", Key: "ISBN"}).
		Add(physical.View{
			Name: "ReviewedBooks",
			Def: &core.Query{
				Out: core.Struct(
					core.SF("ISBN", core.Prj(core.V("b"), "ISBN")),
					core.SF("Title", core.Prj(core.V("b"), "Title")),
				),
				Bindings: []core.Binding{
					{Var: "b", Range: core.Name("Books")},
					{Var: "r", Range: core.Name("Reviews")},
				},
				Conds: []core.Cond{
					{L: core.Prj(core.V("b"), "ISBN"), R: core.Prj(core.V("r"), "ISBN")},
				},
			},
		})
	phys, deps, _, err := design.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Mediated query: titles and scores of reviewed books.
	q := &core.Query{
		Out: core.Struct(
			core.SF("Title", core.Prj(core.V("b"), "Title")),
			core.SF("Score", core.Prj(core.V("r"), "Score")),
		),
		Bindings: []core.Binding{
			{Var: "b", Range: core.Name("Books")},
			{Var: "r", Range: core.Name("Reviews")},
		},
		Conds: []core.Cond{
			{L: core.Prj(core.V("b"), "ISBN"), R: core.Prj(core.V("r"), "ISBN")},
		},
	}
	fmt.Println("mediated query (logical):")
	fmt.Println(q)

	// Data.
	in := instance.NewInstance()
	books := []struct {
		isbn, title string
		year        int64
	}{
		{"111", "Foundations of Databases", 1995},
		{"222", "Principles of DDB Systems", 1999},
		{"333", "The Art of Computer Programming", 1968},
	}
	bookDict := instance.NewDict()
	reviewSet := instance.NewSet()
	viewSet := instance.NewSet()
	for i, b := range books {
		row := instance.StructOf("ISBN", instance.Str(b.isbn),
			"Title", instance.Str(b.title), "Year", instance.Int(b.year))
		bookDict.Put(instance.Str(b.isbn), row)
		if i < 2 { // only the first two are reviewed
			reviewSet.Add(instance.StructOf("ISBN", instance.Str(b.isbn), "Score", instance.Int(int64(3+i))))
			viewSet.Add(instance.StructOf("ISBN", instance.Str(b.isbn), "Title", instance.Str(b.title)))
		}
	}
	in.Bind("BookByISBN", bookDict)
	in.Bind("Reviews", reviewSet)
	in.Bind("ReviewedBooks", viewSet)

	// Optimize against the capabilities: the plan may only use the
	// physical names (the logical Books relation is not scannable!).
	res, err := optimizer.Optimize(q, optimizer.Options{
		Deps:          deps,
		PhysicalNames: phys.NameSet(),
		Stats:         cost.FromInstance(in),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest capability-respecting plan (est. cost %.1f):\n%s\n",
		res.Best.Cost, res.Best.Query)

	out, err := engine.Execute(res.Best.Query, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswer: %s\n", out)
}
