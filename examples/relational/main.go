// Relational: the two §4 scenarios. First the index-only access path for
// a conjunctive selection over R(A,B,C) with secondary indexes SA and SB;
// then the materialized-view + index navigation join for R⋈S with
// V = π_A(R⋈S), IR and IS.
package main

import (
	"fmt"
	"log"

	"cnb/internal/cost"
	"cnb/internal/engine"
	"cnb/internal/eval"
	"cnb/internal/optimizer"
	"cnb/internal/workload"
)

func main() {
	indexOnly()
	viewIndex()
}

func indexOnly() {
	fmt.Println("=== §4.1: index-only access path ===")
	sc, err := workload.NewIndexOnly(5, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:\n%s\n\n", sc.Q)
	in := sc.Generate(5000, 50, 50, 1)
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{
		Deps:  sc.Deps,
		Stats: cost.FromInstance(in),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best plan (est. cost %.1f):\n%s\n\n", res.Best.Cost, res.Best.Query)
	got, err := engine.Execute(res.Best.Query, in)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := eval.Query(sc.Q, in)
	fmt.Printf("rows: %d; matches naive evaluation: %v\n\n", got.Len(), got.Equal(want))
}

func viewIndex() {
	fmt.Println("=== §4.2: materialized view + index navigation ===")
	sc, err := workload.NewViewIndex()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:\n%s\n\n", sc.Q)
	// Selective join: V is much smaller than R and S, so the V+index
	// navigation plan wins, exactly as §4 argues.
	in := sc.Generate(3000, 3000, 8000, 2)
	res, err := optimizer.Optimize(sc.Q, optimizer.Options{
		Deps:  sc.Deps,
		Stats: cost.FromInstance(in),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top candidates:")
	for i, c := range res.Candidates {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. cost %8.1f  uses %v\n", i+1, c.Cost, c.Query.SortedNames())
	}
	fmt.Printf("\nbest plan (est. cost %.1f):\n%s\n\n", res.Best.Cost, res.Best.Query)
	got, err := engine.Execute(res.Best.Query, in)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := eval.Query(sc.Q, in)
	fmt.Printf("rows: %d; matches naive evaluation: %v\n", got.Len(), got.Equal(want))
}
